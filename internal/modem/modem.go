// Package modem implements the linear modulations used across the 802.11
// family: BPSK, QPSK, 16-QAM and 64-QAM with the standard's Gray mapping
// and power normalization, plus the differential BPSK/QPSK used by the
// original DSSS PHY.
//
// Soft demodulation produces max-log LLRs with the convention that a
// positive LLR favours bit value 0.
package modem

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Scheme identifies a modulation.
type Scheme int

const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerSymbol returns the number of bits carried by one symbol.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("modem: unknown scheme")
}

// pamLevels returns the Gray-mapped amplitude ladder for one axis: index by
// the bit group value (first bit is LSB of the index) to get the level.
// These are the 802.11a constellation mappings (Std 802.11-2020, Table
// 17-x): for 16-QAM, bits 00->-3, 01->-1, 11->+1, 10->+3.
func pamLevels(bitsPerAxis int) []float64 {
	switch bitsPerAxis {
	case 1:
		return []float64{-1, 1}
	case 2:
		return []float64{-3, -1, 3, 1} // index b0 + 2*b1
	case 3:
		return []float64{-7, -5, -1, -3, 7, 5, 1, 3} // index b0 + 2*b1 + 4*b2
	}
	panic("modem: unsupported PAM size")
}

// norm returns the scaling that makes the average constellation energy 1.
func (s Scheme) norm() float64 {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	}
	panic("modem: unknown scheme")
}

// Constellation returns the unit-average-energy constellation points of s,
// indexed by the bit-group value with the first transmitted bit in the
// least-significant position.
func (s Scheme) Constellation() []complex128 {
	bps := s.BitsPerSymbol()
	points := make([]complex128, 1<<uint(bps))
	k := s.norm()
	switch s {
	case BPSK:
		lv := pamLevels(1)
		for i := range points {
			points[i] = complex(lv[i]*k, 0)
		}
	default:
		half := bps / 2
		lv := pamLevels(half)
		mask := (1 << uint(half)) - 1
		for i := range points {
			iBits := i & mask
			qBits := i >> uint(half)
			points[i] = complex(lv[iBits]*k, lv[qBits]*k)
		}
	}
	return points
}

// Modulate maps a bit stream (values 0/1) to symbols. The bit count must
// be a multiple of BitsPerSymbol.
func (s Scheme) Modulate(bits []byte) []complex128 {
	bps := s.BitsPerSymbol()
	if len(bits)%bps != 0 {
		panic(fmt.Sprintf("modem: %d bits not a multiple of %d", len(bits), bps))
	}
	table := s.Constellation()
	out := make([]complex128, len(bits)/bps)
	for i := range out {
		idx := 0
		for b := 0; b < bps; b++ {
			idx |= int(bits[i*bps+b]&1) << uint(b)
		}
		out[i] = table[idx]
	}
	return out
}

// DemodulateHard maps received symbols to the nearest constellation point
// and returns the corresponding bits.
func (s Scheme) DemodulateHard(symbols []complex128) []byte {
	table := s.Constellation()
	bps := s.BitsPerSymbol()
	bits := make([]byte, 0, len(symbols)*bps)
	for _, y := range symbols {
		bestIdx, best := 0, math.Inf(1)
		for idx, p := range table {
			if d := sqAbs(y - p); d < best {
				best, bestIdx = d, idx
			}
		}
		for b := 0; b < bps; b++ {
			bits = append(bits, byte(bestIdx>>uint(b))&1)
		}
	}
	return bits
}

// DemodulateSoft computes max-log LLRs for each bit of each symbol given
// the complex noise variance noiseVar (total, both dimensions). Positive
// LLR means bit 0 is more likely. A CSI gain may be folded in by scaling
// symbols to unit channel gain and passing the post-equalization noise
// variance.
func (s Scheme) DemodulateSoft(symbols []complex128, noiseVar float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	table := s.Constellation()
	bps := s.BitsPerSymbol()
	llrs := make([]float64, 0, len(symbols)*bps)
	for _, y := range symbols {
		for b := 0; b < bps; b++ {
			min0, min1 := math.Inf(1), math.Inf(1)
			for idx, p := range table {
				d := sqAbs(y - p)
				if (idx>>uint(b))&1 == 0 {
					if d < min0 {
						min0 = d
					}
				} else if d < min1 {
					min1 = d
				}
			}
			llrs = append(llrs, (min1-min0)/noiseVar)
		}
	}
	return llrs
}

// HardBitsFromLLRs thresholds LLRs into bits (positive -> 0).
func HardBitsFromLLRs(llrs []float64) []byte {
	bits := make([]byte, len(llrs))
	for i, l := range llrs {
		if l < 0 {
			bits[i] = 1
		}
	}
	return bits
}

// BitsToLLRs converts hard bits to saturated LLRs with the given
// confidence magnitude, for feeding hard decisions to soft decoders.
func BitsToLLRs(bits []byte, confidence float64) []float64 {
	llrs := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			llrs[i] = confidence
		} else {
			llrs[i] = -confidence
		}
	}
	return llrs
}

func sqAbs(z complex128) float64 {
	return real(z)*real(z) + imag(z)*imag(z)
}

// Differential implements DBPSK and DQPSK as used by the 802.11 DSSS PHY:
// information is carried in the phase change between successive symbols,
// which removes the need for carrier phase recovery.
type Differential struct {
	scheme Scheme // BPSK or QPSK underlying alphabet
	phase  complex128
}

// NewDifferential creates a differential modulator/demodulator over BPSK
// or QPSK phase alphabets. It panics for other schemes.
func NewDifferential(s Scheme) *Differential {
	if s != BPSK && s != QPSK {
		panic("modem: differential modulation requires BPSK or QPSK")
	}
	return &Differential{scheme: s, phase: 1}
}

// dqpskPhases maps dibit index (first bit in the LSB) to Gray-coded phase
// increments, so that adjacent phases differ in exactly one bit as in
// 802.11 Clause 15 DQPSK.
var dqpskPhases = []complex128{
	1,              // index 0: phase 0
	complex(0, 1),  // index 1: pi/2
	complex(0, -1), // index 2: 3*pi/2
	-1,             // index 3: pi
}

// Modulate differentially encodes bits into unit-energy symbols, carrying
// state across calls so a preamble and payload can be encoded in pieces.
func (d *Differential) Modulate(bits []byte) []complex128 {
	bps := d.scheme.BitsPerSymbol()
	if len(bits)%bps != 0 {
		panic("modem: differential bit count not a multiple of symbol size")
	}
	out := make([]complex128, len(bits)/bps)
	for i := range out {
		var inc complex128
		if d.scheme == BPSK {
			if bits[i] == 0 {
				inc = 1
			} else {
				inc = -1
			}
		} else {
			idx := int(bits[2*i]&1) | int(bits[2*i+1]&1)<<1
			inc = dqpskPhases[idx]
		}
		d.phase *= inc
		out[i] = d.phase
	}
	return out
}

// Demodulate recovers bits from received symbols by comparing successive
// phases. prev is the last symbol of any previously demodulated block (use
// the reference symbol 1+0i at stream start).
func (d *Differential) Demodulate(symbols []complex128, prev complex128) []byte {
	bps := d.scheme.BitsPerSymbol()
	bits := make([]byte, 0, len(symbols)*bps)
	if prev == 0 {
		prev = 1
	}
	for _, y := range symbols {
		diff := y * cmplx.Conj(prev)
		prev = y
		if d.scheme == BPSK {
			if real(diff) >= 0 {
				bits = append(bits, 0)
			} else {
				bits = append(bits, 1)
			}
			continue
		}
		// Nearest of the four phase increments.
		mag := cmplx.Abs(diff)
		if mag == 0 {
			bits = append(bits, 0, 0)
			continue
		}
		unit := diff / complex(mag, 0)
		bestIdx, best := 0, math.Inf(1)
		for idx, p := range dqpskPhases {
			if dist := sqAbs(unit - p); dist < best {
				best, bestIdx = dist, idx
			}
		}
		bits = append(bits, byte(bestIdx&1), byte(bestIdx>>1)&1)
	}
	return bits
}

// Reset returns the differential state to the reference phase.
func (d *Differential) Reset() { d.phase = 1 }
