package phy

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func mustHt(t *testing.T, cfg HtConfig) *Ht {
	t.Helper()
	p, err := NewHt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func htRoundTrip(t *testing.T, p *Ht, payloadLen int, noiseVar float64, seed int64) {
	t.Helper()
	src := rng.New(seed)
	payload := src.Bytes(payloadLen)
	ch := channel.NewMIMOTDL(p.NumRx(), p.NumTx(), 3, 0.5, src)
	if p.cfg.Beamform {
		p.SetCSI(ch.FrequencyResponse(p.grid.NFFT))
	}
	tx := p.TxFrame(payload)
	rx := ch.Apply(tx)
	if noiseVar > 0 {
		for j := range rx {
			rx[j] = channel.AWGN(rx[j], noiseVar, src)
		}
	}
	got, ok := p.RxFrame(rx, math.Max(noiseVar, 1e-9))
	if !ok {
		t.Fatalf("%s: frame rejected", p.Name())
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("%s: payload mismatch", p.Name())
	}
}

func TestHtRateTable(t *testing.T) {
	cases := []struct {
		cfg  HtConfig
		want float64
	}{
		{HtConfig{MCS: 0}, 6.5},
		{HtConfig{MCS: 7}, 65},
		{HtConfig{MCS: 15, NRx: 2}, 130},
		{HtConfig{MCS: 7, ShortGI: true}, 72.2},
		{HtConfig{MCS: 7, Width40: true}, 135},
		{HtConfig{MCS: 31, Width40: true, ShortGI: true, NRx: 4}, 600},
	}
	for _, c := range cases {
		p := mustHt(t, c.cfg)
		if got := p.RateMbps(); math.Abs(got-c.want) > 0.3 {
			t.Errorf("MCS%d: rate %v, want %v", c.cfg.MCS, got, c.want)
		}
	}
}

func TestHt600MbpsIs15bpsHz(t *testing.T) {
	// The paper: "rates potentially as high as 600 Mbps in a 40 MHz
	// channel" and "efficiencies up to 15 bps/Hz".
	p := mustHt(t, HtConfig{MCS: 31, Width40: true, ShortGI: true, NRx: 4})
	se := p.RateMbps() / p.BandwidthMHz()
	if math.Abs(se-15) > 0.1 {
		t.Errorf("peak HT efficiency %v bps/Hz, want 15", se)
	}
}

func TestHtConfigValidation(t *testing.T) {
	bad := []HtConfig{
		{MCS: -1},
		{MCS: 32},
		{MCS: 8, NRx: 1},             // 2 streams, 1 rx antenna
		{MCS: 8, STBC: true, NRx: 2}, // STBC needs 1 stream
		{MCS: 0, STBC: true, NTx: 3}, // STBC needs 2 TX
		{MCS: 0, STBC: true, Beamform: true, NTx: 2},
		{MCS: 0, NTx: 2}, // direct mapping needs NTx == streams
	}
	for i, cfg := range bad {
		if _, err := NewHt(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

func TestHtSisoNoiseless(t *testing.T) {
	htRoundTrip(t, mustHt(t, HtConfig{MCS: 0}), 100, 0, 1)
	htRoundTrip(t, mustHt(t, HtConfig{MCS: 7}), 100, 0, 2)
}

func TestHtSpatialStreams(t *testing.T) {
	for _, mcs := range []int{8, 15, 16, 24, 31} {
		nss := mcs/8 + 1
		p := mustHt(t, HtConfig{MCS: mcs, NRx: nss})
		htRoundTrip(t, p, 100, 0, int64(mcs))
		if p.NumStreams() != nss {
			t.Errorf("MCS%d: streams %d, want %d", mcs, p.NumStreams(), nss)
		}
	}
}

func TestHtExtraRxAntennas(t *testing.T) {
	// 2 streams, 4 rx antennas: extra diversity must not break decode.
	htRoundTrip(t, mustHt(t, HtConfig{MCS: 12, NRx: 4}), 100, 0.001, 3)
}

func TestHt40MHz(t *testing.T) {
	htRoundTrip(t, mustHt(t, HtConfig{MCS: 15, Width40: true, NRx: 2}), 200, 0, 4)
}

func TestHtShortGI(t *testing.T) {
	htRoundTrip(t, mustHt(t, HtConfig{MCS: 7, ShortGI: true}), 100, 0, 5)
}

func TestHtLdpc(t *testing.T) {
	for _, mcs := range []int{0, 7, 15} {
		nss := mcs/8 + 1
		p := mustHt(t, HtConfig{MCS: mcs, LDPC: true, NRx: nss})
		htRoundTrip(t, p, 150, 0, int64(100+mcs))
	}
}

func TestHtStbc(t *testing.T) {
	p := mustHt(t, HtConfig{MCS: 2, STBC: true, NRx: 1})
	htRoundTrip(t, p, 100, 0, 6)
	htRoundTrip(t, p, 100, 0.01, 7)
}

func TestHtBeamforming(t *testing.T) {
	p := mustHt(t, HtConfig{MCS: 0, Beamform: true, NTx: 2, NRx: 2})
	htRoundTrip(t, p, 100, 0, 8)
	htRoundTrip(t, p, 100, 0.01, 9)
}

func TestHtBeamformingTwoStreams(t *testing.T) {
	p := mustHt(t, HtConfig{MCS: 9, Beamform: true, NTx: 2, NRx: 2})
	htRoundTrip(t, p, 100, 0, 10)
}

func TestHtBeamformingRequiresCSI(t *testing.T) {
	p := mustHt(t, HtConfig{MCS: 0, Beamform: true, NTx: 2, NRx: 2})
	defer func() {
		if recover() == nil {
			t.Error("TxFrame without CSI should panic")
		}
	}()
	p.TxFrame([]byte{1, 2, 3})
}

func TestHtStbcBeatsSiso(t *testing.T) {
	// Transmit diversity pays off in fading: at equal total power, STBC
	// has fewer frame losses than 1x1 at the same SNR.
	src := rng.New(13)
	const snr = 11.0
	const frames = 60
	siso := mustHt(t, HtConfig{MCS: 2})
	stbc := mustHt(t, HtConfig{MCS: 2, STBC: true, NRx: 1})
	perSiso := MeasurePERMimo(siso, FlatMimoChannel, snr, 80, frames, src.Split()).PER()
	perStbc := MeasurePERMimo(stbc, FlatMimoChannel, snr, 80, frames, src.Split()).PER()
	if perStbc > perSiso {
		t.Errorf("STBC PER %v worse than SISO %v", perStbc, perSiso)
	}
}

func TestHtMimoPERHarness(t *testing.T) {
	src := rng.New(14)
	p := mustHt(t, HtConfig{MCS: 8, NRx: 2})
	res := MeasurePERMimo(p, MultipathMimoChannel(3, 0.5), 30, 80, 15, src)
	if res.PER() > 0.2 {
		t.Errorf("2-stream PER %v at 30 dB", res.PER())
	}
}

func TestHtBeamformingBeatsOpenLoopAtLowSNR(t *testing.T) {
	// The closed-loop gain the paper forecasts: SVD precoding with one
	// stream on 2x2 beats open-loop 1x1 by the array+diversity gain.
	src := rng.New(15)
	const snr = 9.0
	const frames = 50
	open := mustHt(t, HtConfig{MCS: 2})
	bf := mustHt(t, HtConfig{MCS: 2, Beamform: true, NTx: 2, NRx: 2})
	perOpen := MeasurePERMimo(open, FlatMimoChannel, snr, 80, frames, src.Split()).PER()
	perBf := MeasurePERMimo(bf, FlatMimoChannel, snr, 80, frames, src.Split()).PER()
	if perBf > perOpen {
		t.Errorf("beamformed PER %v worse than open-loop SISO %v", perBf, perOpen)
	}
}
