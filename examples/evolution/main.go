// Evolution walks the paper's generational ladder end to end: the same
// payload is transmitted by each 802.11 era's PHY and the airtime,
// nominal rate and spectral efficiency are compared.
package main

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/rng"
)

func main() {
	src := rng.New(7)
	payload := src.Bytes(500)
	noise := channel.NoiseVarFromSNRdB(35)

	fmt.Println("generation                      on-air us  nominal Mbps  bps/Hz")
	show := func(name string, airUs, rate, bw float64) {
		fmt.Printf("%-30s  %-9.0f  %-12.1f  %.2f\n", name, airUs, rate, rate/bw)
	}

	for _, rate := range []float64{1, 2} {
		p, _ := phy.NewDsss(rate)
		tx := p.TxFrame(payload)
		if _, ok := p.RxFrame(channel.AWGN(tx, noise, src), noise); !ok {
			panic("dsss frame lost at 35 dB")
		}
		show(p.Name(), float64(len(tx))/p.BandwidthMHz(), p.RateMbps(), p.BandwidthMHz())
	}
	for _, rate := range []float64{5.5, 11} {
		p, _ := phy.NewCck(rate)
		tx := p.TxFrame(payload)
		if _, ok := p.RxFrame(channel.AWGN(tx, noise, src), noise); !ok {
			panic("cck frame lost at 35 dB")
		}
		show(p.Name(), float64(len(tx))/p.BandwidthMHz(), p.RateMbps(), p.BandwidthMHz())
	}
	for _, rate := range []float64{6, 24, 54} {
		p, _ := phy.NewOfdm(rate)
		tx := p.TxFrame(payload)
		if _, ok := p.RxFrame(channel.AWGN(tx, noise, src), noise); !ok {
			panic("ofdm frame lost at 35 dB")
		}
		show(p.Name(), float64(len(tx))/p.BandwidthMHz(), p.RateMbps(), p.BandwidthMHz())
	}
	for _, cfg := range []phy.HtConfig{
		{MCS: 7},
		{MCS: 15, NRx: 2},
		{MCS: 31, Width40: true, ShortGI: true, NRx: 4},
	} {
		p, err := phy.NewHt(cfg)
		if err != nil {
			panic(err)
		}
		ch := channel.NewMIMOTDL(p.NumRx(), p.NumTx(), 2, 0.3, src)
		tx := p.TxFrame(payload)
		rx := ch.Apply(tx)
		for j := range rx {
			rx[j] = channel.AWGN(rx[j], noise, src)
		}
		_, ok := p.RxFrame(rx, noise)
		status := ""
		if !ok {
			status = " (lost on this channel draw)"
		}
		show(p.Name()+status, float64(len(tx[0]))/p.BandwidthMHz(), p.RateMbps(), p.BandwidthMHz())
	}
}
