// Package app puts application models on top of the closed-loop
// transport: a web user loading pages with think time between them, a
// buffered video session requesting chunks ahead of playback, and a
// voice call scored with the ITU E-model. Each user reports one
// netsim.UserQoE — the per-user experience block collect pools into
// Result.QoE — so dense-deployment scenarios can be judged on what
// users see (page-load percentiles, rebuffer ratio, MOS) rather than
// on saturated MAC throughput.
//
// All user randomness (think times, page sizes, start phases) comes
// from rng.Sources split from the network's seed stream at build time,
// and all timers ride the owning flow's engine clock, so a run with
// app users is exactly as reproducible as a bare MAC run.
package app

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/netsim/transport"
	"repro/internal/rng"
)

// checkPositive mirrors the netsim validation idiom: panic early with
// the parameter's name rather than simulate nonsense.
func checkPositive(model, field string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		panic(fmt.Sprintf("app: %s.%s must be positive and finite, got %v", model, field, v))
	}
}

// WebConfig parameterizes one web user.
type WebConfig struct {
	// PageBytes is the mean page size; each load draws uniformly in
	// [0.5, 1.5] of it.
	PageBytes int

	// ThinkMeanUs is the exponential dwell between a page finishing
	// and the next request.
	ThinkMeanUs float64

	// StartDelayUs staggers the user's first request (presets draw it
	// per user so a floor does not start in lockstep).
	StartDelayUs float64
}

func (c WebConfig) validate() {
	checkPositive("WebConfig", "PageBytes", float64(c.PageBytes))
	checkPositive("WebConfig", "ThinkMeanUs", c.ThinkMeanUs)
	if c.StartDelayUs < 0 || math.IsNaN(c.StartDelayUs) || math.IsInf(c.StartDelayUs, 0) {
		panic(fmt.Sprintf("app: WebConfig.StartDelayUs must be non-negative and finite, got %v", c.StartDelayUs))
	}
}

// WebUser drives request/think/request page loads over one transport
// connection and records the page-load-time distribution.
type WebUser struct {
	conn *transport.Conn
	cfg  WebConfig
	src  *rng.Source

	pltUs []float64
}

// NewWebUser binds a web user to the connection (taking its OnStart
// hook) with src as the user's private draw stream.
func NewWebUser(conn *transport.Conn, cfg WebConfig, src *rng.Source) *WebUser {
	cfg.validate()
	u := &WebUser{conn: conn, cfg: cfg, src: src}
	conn.OnStart = func() { conn.Schedule(cfg.StartDelayUs, u.request) }
	return u
}

// request opens one page load; its completion records the PLT and arms
// the next request a think time later.
func (u *WebUser) request() {
	start := u.conn.NowUs()
	size := int(float64(u.cfg.PageBytes) * (0.5 + u.src.Float64()))
	u.conn.Send(size, func(now float64) {
		u.pltUs = append(u.pltUs, now-start)
		u.conn.Schedule(u.src.Exponential(u.cfg.ThinkMeanUs), u.request)
	})
}

// QoE reports the user's page-load samples (register via
// Network.AddQoE).
func (u *WebUser) QoE() netsim.UserQoE {
	return netsim.UserQoE{Kind: netsim.QoEWeb, PageLoadUs: u.pltUs}
}

// VideoConfig parameterizes one buffered video session.
type VideoConfig struct {
	// ChunkBytes is one media chunk's size; ChunkUs is the playback
	// time it carries (ChunkBytes*8/ChunkUs is the stream's bitrate).
	ChunkBytes int
	ChunkUs    float64

	// StartupChunks is the buffer depth (in chunks) required before
	// playback starts — and before it resumes after a stall.
	StartupChunks int

	// BufferMaxUs caps the playback buffer; the client stops
	// requesting ahead once the next chunk would overflow it.
	BufferMaxUs float64

	// StartDelayUs staggers the session's first request.
	StartDelayUs float64
}

func (c VideoConfig) validate() {
	checkPositive("VideoConfig", "ChunkBytes", float64(c.ChunkBytes))
	checkPositive("VideoConfig", "ChunkUs", c.ChunkUs)
	checkPositive("VideoConfig", "StartupChunks", float64(c.StartupChunks))
	checkPositive("VideoConfig", "BufferMaxUs", c.BufferMaxUs)
	if c.BufferMaxUs < float64(c.StartupChunks)*c.ChunkUs {
		panic(fmt.Sprintf("app: VideoConfig.BufferMaxUs %v cannot hold the %d startup chunks",
			c.BufferMaxUs, c.StartupChunks))
	}
	if c.StartDelayUs < 0 || math.IsNaN(c.StartDelayUs) || math.IsInf(c.StartDelayUs, 0) {
		panic(fmt.Sprintf("app: VideoConfig.StartDelayUs must be non-negative and finite, got %v", c.StartDelayUs))
	}
}

// VideoUser is a buffered streaming session: chunks download over the
// connection, the playback buffer drains in virtual time, and the
// session records startup delay plus every stall. The buffer is
// evaluated analytically at event boundaries (chunk completions,
// request timers) — no per-frame playback events exist, so an idle
// steady-state session costs nothing on the engine.
type VideoUser struct {
	conn *transport.Conn
	cfg  VideoConfig

	sessionStartUs float64
	lastUs         float64
	open           bool // session began (start delay elapsed)
	started        bool // first frame rendered
	playing        bool
	bufferUs       float64

	startupUs  float64
	waitUs     float64 // pre-start wait, the whole session if it never starts
	playedUs   float64
	rebufferUs float64
	rebuffers  int
}

// NewVideoUser binds a video session to the connection (taking its
// OnStart hook).
func NewVideoUser(conn *transport.Conn, cfg VideoConfig) *VideoUser {
	cfg.validate()
	u := &VideoUser{conn: conn, cfg: cfg}
	conn.OnStart = func() { conn.Schedule(cfg.StartDelayUs, u.begin) }
	return u
}

// begin opens the session and requests the first chunk.
func (u *VideoUser) begin() {
	u.open = true
	u.sessionStartUs = u.conn.NowUs()
	u.lastUs = u.sessionStartUs
	u.requestChunk()
}

// requestChunk downloads one chunk; its completion credits the buffer.
func (u *VideoUser) requestChunk() {
	u.conn.Send(u.cfg.ChunkBytes, u.chunkDone)
}

// advance plays the buffer forward to now, splitting the elapsed time
// into played, stalled, and pre-start waiting.
func (u *VideoUser) advance(nowUs float64) {
	dt := nowUs - u.lastUs
	u.lastUs = nowUs
	if !u.open || dt <= 0 {
		return
	}
	if !u.playing {
		if u.started {
			u.rebufferUs += dt
		} else {
			u.waitUs += dt
		}
		return
	}
	if play := math.Min(u.bufferUs, dt); play > 0 {
		u.playedUs += play
		u.bufferUs -= play
		dt -= play
	}
	if dt > 0 {
		// The buffer ran dry mid-interval: the remainder is a stall.
		u.playing = false
		u.rebuffers++
		u.rebufferUs += dt
	}
}

// creditChunk folds one arrived chunk into the buffer: advance the
// drain, credit the playback time, start (or resume) playback once the
// startup depth is met. It returns how long the next request must wait
// for buffer room (0 = request immediately), keeping the pacing
// decision testable without a connection.
func (u *VideoUser) creditChunk(nowUs float64) float64 {
	u.advance(nowUs)
	u.bufferUs += u.cfg.ChunkUs
	if !u.playing && u.bufferUs >= float64(u.cfg.StartupChunks)*u.cfg.ChunkUs {
		u.playing = true
		if !u.started {
			u.started = true
			u.startupUs = nowUs - u.sessionStartUs
		}
	}
	if excess := u.bufferUs + u.cfg.ChunkUs - u.cfg.BufferMaxUs; excess > 0 && u.playing {
		return excess
	}
	return 0
}

// chunkDone paces the next request from creditChunk's verdict: a full
// buffer waits for the excess to play out (advance runs again at the
// timer, keeping the analytic drain exact), otherwise request now.
func (u *VideoUser) chunkDone(nowUs float64) {
	if wait := u.creditChunk(nowUs); wait > 0 {
		u.conn.Schedule(wait, func() {
			u.advance(u.conn.NowUs())
			u.requestChunk()
		})
		return
	}
	u.requestChunk()
}

// QoE settles the buffer to the current clock and reports the session.
func (u *VideoUser) QoE() netsim.UserQoE {
	u.advance(u.conn.NowUs())
	q := netsim.UserQoE{Kind: netsim.QoEVideo,
		StartupUs: u.startupUs, PlayedUs: u.playedUs,
		RebufferUs: u.rebufferUs, Rebuffers: u.rebuffers}
	if !u.started {
		// Never reached the startup depth: the whole session was one
		// long wait.
		q.StartupUs = u.waitUs
		q.RebufferUs += u.waitUs
	}
	return q
}

// VoiceConfig parameterizes one voice call's scoring. The media stream
// itself is an ordinary open-loop CBR flow — voice is inelastic and
// rides UDP, not the closed loop — with the VoiceUser attached as a
// pure fate observer.
type VoiceConfig struct {
	// CodecDelayMs is the fixed mouth-to-ear component added to the
	// measured network delay: codec framing, packetization, jitter
	// buffer. Default 25 ms when zero.
	CodecDelayMs float64
}

// VoiceUser observes a CBR flow's fates and scores the call with the
// ITU-T G.107 E-model (simplified to its delay and packet-loss
// impairments, G.711 robustness): R = 93.2 - Id(delay) - Ie,eff(loss),
// mapped to a 1..4.5 mean-opinion score.
type VoiceUser struct {
	cfg        VoiceConfig
	delivered  int
	lost       int
	delaySumUs float64
}

// NewVoiceUser attaches the observer to the flow (which keeps its own
// generator — typically CBR at a codec's packet rate).
func NewVoiceUser(f *netsim.Flow, cfg VoiceConfig) *VoiceUser {
	if cfg.CodecDelayMs == 0 {
		cfg.CodecDelayMs = 25
	}
	checkPositive("VoiceConfig", "CodecDelayMs", cfg.CodecDelayMs)
	u := &VoiceUser{cfg: cfg}
	f.SetControl(u)
	return u
}

// Start is the netsim.Control hook; a pure observer has nothing to arm.
func (u *VoiceUser) Start() {}

// PacketFate tallies the call's delivery record.
func (u *VoiceUser) PacketFate(fate netsim.PacketFate, bytes int, elapsedUs float64) {
	if fate == netsim.FateDelivered {
		u.delivered++
		u.delaySumUs += elapsedUs
	} else {
		u.lost++
	}
}

// MOS computes the call's E-model score from the observed loss rate
// and mean one-way delay. A call that delivered nothing scores 1.
func (u *VoiceUser) MOS() float64 {
	if u.delivered == 0 {
		return 1
	}
	lossPct := 100 * float64(u.lost) / float64(u.lost+u.delivered)
	delayMs := u.cfg.CodecDelayMs + u.delaySumUs/float64(u.delivered)/1e3
	// Delay impairment Id: the standard piecewise fit — linear to
	// 177.3 ms, then steep.
	id := 0.024 * delayMs
	if delayMs > 177.3 {
		id += 0.11 * (delayMs - 177.3)
	}
	// Effective equipment impairment for G.711 (Ie = 0, Bpl = 25.1)
	// under random loss.
	ieEff := 95 * lossPct / (lossPct + 25.1)
	r := 93.2 - id - ieEff
	return mosFromR(r)
}

// mosFromR is the G.107 R-factor → MOS mapping.
func mosFromR(r float64) float64 {
	if r <= 0 {
		return 1
	}
	if r > 100 {
		r = 100
	}
	return 1 + 0.035*r + 7e-6*r*(r-60)*(100-r)
}

// QoE reports the call score (register via Network.AddQoE).
func (u *VoiceUser) QoE() netsim.UserQoE {
	return netsim.UserQoE{Kind: netsim.QoEVoice, MOS: u.MOS()}
}
