package netsim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/mac"
)

// run1 is a small saturated single-BSS network for quick checks.
func run1(seed int64, stations int, durationUs float64) Result {
	build := DenseGrid(DefaultConfig(), 1, stations, []int{1}, 40, 1000)
	return build(seed).Run(durationUs)
}

func TestFixedSeedIsBitForBitDeterministic(t *testing.T) {
	a := run1(7, 5, 200000)
	b := run1(7, 5, 200000)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := run1(8, 5, 200000)
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", c) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestSingleStationSaturatedGoodput(t *testing.T) {
	res := run1(1, 1, 500000)
	// One station 10m from the AP runs 54 Mbps. A 1000 B exchange is
	// PLCP 20 + 148 + SIFS 16 + ACK 44 ≈ 228 us plus DIFS and ~7.5
	// slots of backoff ≈ 330 us, so ~24 Mbps goodput. Accept a band.
	if res.AggGoodputMbps < 18 || res.AggGoodputMbps > 30 {
		t.Errorf("single-station goodput %.1f Mbps, want ~24", res.AggGoodputMbps)
	}
	if res.Collisions != 0 {
		t.Errorf("%d collisions with one station", res.Collisions)
	}
	// Attempts may exceed judged frames by the exchanges still in
	// flight when the horizon cuts the run.
	inFlight := res.Attempts - (res.Delivered + res.Collisions + res.NoiseLosses)
	if res.Delivered == 0 || inFlight < 0 || inFlight > 1 {
		t.Errorf("attempt accounting off: %+v", res)
	}
}

func TestContentionCausesCollisionsAndSharesFairly(t *testing.T) {
	res := run1(3, 8, 500000)
	if res.Collisions == 0 {
		t.Error("8 saturated stations should collide sometimes")
	}
	if jain := JainIndex(Goodputs(res.Flows)); jain < 0.9 {
		t.Errorf("equal-rate stations got Jain %.3f, want ≈1", jain)
	}
	single := run1(3, 1, 500000)
	if res.AggGoodputMbps > single.AggGoodputMbps*1.05 {
		t.Errorf("contention increased aggregate goodput: %.1f vs %.1f",
			res.AggGoodputMbps, single.AggGoodputMbps)
	}
}

func TestCoChannelBSSInterfere(t *testing.T) {
	cfg := DefaultConfig()
	const dur = 400000
	same := DenseGrid(cfg, 2, 4, []int{1}, 30, 1000)(5).Run(dur)
	split := DenseGrid(cfg, 2, 4, []int{1, 6}, 30, 1000)(5).Run(dur)
	// Orthogonal channels should roughly double capacity over one
	// shared collision domain.
	if split.AggGoodputMbps < same.AggGoodputMbps*1.5 {
		t.Errorf("channel split %.1f Mbps vs co-channel %.1f Mbps; expected ~2x",
			split.AggGoodputMbps, same.AggGoodputMbps)
	}
	if same.Collisions == 0 {
		t.Error("co-channel BSSs never collided")
	}
}

func TestHiddenNodesCollideWithoutCarrierSense(t *testing.T) {
	cfg := DefaultConfig()
	const dur = 400000
	// 300 m apart: each station decodes the AP (~150 m) but receives
	// its peer far below the -82 dBm carrier-sense threshold.
	hidden := HiddenPair(cfg, 300, 1000)(2).Run(dur)
	exposed := HiddenPair(cfg, 40, 1000)(2).Run(dur)
	hr := float64(hidden.Collisions) / float64(hidden.Attempts)
	er := float64(exposed.Collisions) / float64(exposed.Attempts)
	if hr < 0.25 {
		t.Errorf("hidden pair collision rate %.2f, want heavy collisions", hr)
	}
	if er > hr/3 {
		t.Errorf("in-range pair collision rate %.2f vs hidden %.2f; carrier sense should help", er, hr)
	}
	if hidden.AggGoodputMbps >= exposed.AggGoodputMbps {
		t.Errorf("hidden goodput %.1f should trail exposed %.1f",
			hidden.AggGoodputMbps, exposed.AggGoodputMbps)
	}
}

func TestOverloadDropsAtTheQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 8
	n := New(cfg, 4)
	b := n.AddAP("AP", 0, 0, 1)
	st := n.AddStation(b, "sta", 10, 0)
	// ~96 Mbps offered into a ~24 Mbps link must shed most packets.
	n.Add(FlowSpec{From: st, AC: AC_BE, Gen: CBR{PayloadBytes: 1200, IntervalUs: 100}})
	res := n.Run(300000)
	fs := res.Flows[0]
	if fs.QueueDrops == 0 {
		t.Errorf("no queue drops under 4x overload: %+v", fs)
	}
	if fs.DropRate() < 0.5 {
		t.Errorf("drop rate %.2f, want most of the overload shed", fs.DropRate())
	}
}

func TestTrafficMixDelivers(t *testing.T) {
	res := TrafficMix(DefaultConfig(), 4, 2, 1, 2.0)(6).Run(500000)
	classes := map[string]int{}
	for _, f := range res.Flows {
		classes[f.Class] += f.Delivered
	}
	for _, class := range []string{"cbr", "poisson", "onoff"} {
		if classes[class] == 0 {
			t.Errorf("class %s delivered nothing: %v", class, classes)
		}
	}
	// Lightly loaded voice should see sub-10ms mean delay.
	for _, f := range res.Flows {
		if f.Class == "cbr" && f.MeanDelayUs > 10000 {
			t.Errorf("voice flow %s delay %.0f us under light load", f.Label, f.MeanDelayUs)
		}
	}
}

func TestDownlinkFlow(t *testing.T) {
	n := New(DefaultConfig(), 9)
	b := n.AddAP("AP", 0, 0, 1)
	st := n.AddStation(b, "sta", 8, 0)
	n.Add(FlowSpec{From: b.AP, To: st, AC: AC_BE, Gen: Poisson{PayloadBytes: 800, PktPerSec: 500}})
	res := n.Run(400000)
	if res.Flows[0].Delivered == 0 {
		t.Fatalf("downlink delivered nothing: %+v", res.Flows[0])
	}
}

func TestRoamingReassociatesToStrongerAP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RoamIntervalUs = 100000
	// 2 m per 100 ms scan = 20 m/s walk: ends 100 m from AP1 and 20 m
	// from AP2, far past the 3 dB reassociation hysteresis.
	res := RoamingWalk(cfg, 120, 20)(3).Run(5e6)
	if res.Roams == 0 {
		t.Fatal("walker never reassociated")
	}
	fs := res.Flows[0]
	if fs.Delivered == 0 || fs.DropRate() > 0.2 {
		t.Errorf("walking flow suffered: %+v", fs)
	}
}

func TestRtsCtsRescuesHiddenPair(t *testing.T) {
	cfg := DefaultConfig()
	const dur = 500000
	plain := HiddenPair(cfg, 300, 1500)(2).Run(dur)
	rts := HiddenPairRtsCts(cfg, 300, 1500)(2).Run(dur)
	if plain.RtsAttempts != 0 {
		t.Errorf("plain run sent %d RTSs", plain.RtsAttempts)
	}
	if rts.RtsAttempts == 0 {
		t.Fatal("RTS/CTS run sent no RTSs")
	}
	if rts.AggGoodputMbps < plain.AggGoodputMbps*1.3 {
		t.Errorf("RTS/CTS goodput %.2f did not recover over plain %.2f",
			rts.AggGoodputMbps, plain.AggGoodputMbps)
	}
	pr := float64(plain.Collisions) / float64(plain.Attempts)
	rr := float64(rts.Collisions) / float64(rts.Attempts)
	if rr > pr/2 {
		t.Errorf("RTS/CTS collision rate %.2f vs plain %.2f; NAV should defer the hidden peer", rr, pr)
	}
	// With the NAV in place, what still collides should mostly be the
	// short RTS, not protected data frames.
	if rts.RtsFailures < rts.Collisions/2 {
		t.Errorf("only %d of %d collision losses were RTSs", rts.RtsFailures, rts.Collisions)
	}
}

// NAV is virtual carrier sense: a node whose NAV is set must sit out
// even when the medium measures idle the whole time (nothing on the
// air), and contend only after expiry. This is exactly the state a
// hidden station is in during a protected exchange: it cannot sense
// the data frame, only the reservation it decoded from the CTS.
func TestNavDefersContentionOnIdleMedium(t *testing.T) {
	n := New(DefaultConfig(), 11)
	b := n.AddAP("AP", 0, 0, 1)
	st := n.AddStation(b, "sta", 10, 0)
	fl := n.Add(FlowSpec{From: st, AC: AC_BE, Gen: CBR{PayloadBytes: 400, IntervalUs: 1e6}})
	n.build()

	sh := n.shards[0]
	st.setNav(5000)
	st.enqueue(&packet{flow: fl, bytes: 400, arrivalUs: 0, ac: AC_BE})
	sh.eng.Run(4999)
	if sh.attempts[AC_BE] != 0 {
		t.Fatalf("station transmitted %d times during its NAV on an idle medium", sh.attempts[AC_BE])
	}
	if q := &st.acq[AC_BE]; !q.contending || q.boEvent.Scheduled() {
		t.Fatalf("station should be contending with the countdown parked: %+v", q)
	}
	sh.eng.Run(20000)
	if sh.attempts[AC_BE] != 1 || sh.delivered[AC_BE] != 1 {
		t.Fatalf("after NAV expiry: attempts %d delivered %d, want 1/1", sh.attempts[AC_BE], sh.delivered[AC_BE])
	}
}

func TestRtsThresholdBoundary(t *testing.T) {
	run := func(threshold int) Result {
		cfg := DefaultConfig()
		cfg.RtsThresholdBytes = threshold
		n := New(cfg, 3)
		b := n.AddAP("AP", 0, 0, 1)
		st := n.AddStation(b, "sta", 10, 0)
		n.Add(FlowSpec{From: st, AC: AC_BE, Gen: CBR{PayloadBytes: 800, IntervalUs: 2000}})
		return n.Run(100000)
	}
	atThreshold := run(800) // payload == threshold: RTS protects
	above := run(801)       // payload below threshold: plain exchange
	off := run(0)           // 0 disables RTS/CTS entirely
	if atThreshold.RtsAttempts == 0 {
		t.Error("payload at the threshold should open with an RTS")
	}
	if atThreshold.RtsAttempts != atThreshold.Attempts {
		t.Errorf("%d attempts but %d RTSs", atThreshold.Attempts, atThreshold.RtsAttempts)
	}
	if above.RtsAttempts != 0 {
		t.Errorf("payload below the threshold sent %d RTSs", above.RtsAttempts)
	}
	if off.RtsAttempts != 0 {
		t.Errorf("threshold 0 sent %d RTSs", off.RtsAttempts)
	}
	if atThreshold.Delivered == 0 || above.Delivered == 0 {
		t.Error("both variants should deliver on a clean single-station link")
	}
}

func TestArfDownshiftsWithDistance(t *testing.T) {
	run := func(distM float64) Result {
		cfg := DefaultConfig()
		a := mac.DefaultArf()
		cfg.Arf = &a
		n := New(cfg, 5)
		b := n.AddAP("AP", 0, 0, 1)
		st := n.AddStation(b, "sta", distM, 0)
		n.Add(FlowSpec{From: st, AC: AC_BE, Gen: Saturated{PayloadBytes: 1000}})
		return n.Run(300000)
	}
	meanRate := func(r Result) float64 {
		rateOf := map[string]float64{}
		for _, m := range DefaultConfig().Modes {
			rateOf[m.Name] = m.RateMbps
		}
		var frames, sum float64
		for name, c := range r.ModeAttempts {
			frames += float64(c)
			sum += float64(c) * rateOf[name]
		}
		return sum / frames
	}
	near, far := run(10), run(140)
	if nm, fm := meanRate(near), meanRate(far); fm >= nm {
		t.Errorf("mean attempted rate near %.1f vs far %.1f; ARF should downshift with distance", nm, fm)
	}
	if len(far.ModeAttempts) < 2 {
		t.Errorf("far station's histogram %v never probed across modes", far.ModeAttempts)
	}
	if near.AggGoodputMbps <= far.AggGoodputMbps {
		t.Errorf("near goodput %.1f not above far %.1f", near.AggGoodputMbps, far.AggGoodputMbps)
	}
}

func TestArfWalkerDownshiftsWalkingAway(t *testing.T) {
	// One lone AP, a saturated station walking straight away from it:
	// per-frame ARF must walk the attempt histogram down the staircase
	// as the SNR decays, with no reassociation involved.
	cfg := DefaultConfig()
	a := mac.DefaultArf()
	cfg.Arf = &a
	cfg.RoamIntervalUs = 100000
	n := New(cfg, 7)
	b := n.AddAP("AP", 0, 0, 1)
	st := n.AddStation(b, "walker", 5, 0)
	n.SetVelocity(st, 30, 0) // 5 m -> 155 m over 5 s
	n.Add(FlowSpec{From: st, AC: AC_BE, Gen: Saturated{PayloadBytes: 1000}})
	res := n.Run(5e6)
	if res.ModeAttempts["OFDM 54 Mbps"] == 0 {
		t.Errorf("walker never used the top rate near the AP: %v", res.ModeAttempts)
	}
	low := res.ModeAttempts["OFDM 18 Mbps"] + res.ModeAttempts["OFDM 12 Mbps"] +
		res.ModeAttempts["OFDM 9 Mbps"] + res.ModeAttempts["OFDM 6 Mbps"]
	if low == 0 {
		t.Errorf("walker never fell back to a low rate far out: %v", res.ModeAttempts)
	}
	if len(res.ModeAttempts) < 4 {
		t.Errorf("histogram %v should traverse the staircase", res.ModeAttempts)
	}
}

func TestDeterministicWithRtsAndArf(t *testing.T) {
	build := func() Result {
		cfg := DefaultConfig()
		cfg.RtsThresholdBytes = 500
		a := mac.DefaultArf()
		cfg.Arf = &a
		return HiddenPair(cfg, 300, 1200)(13).Run(200000)
	}
	a, b := build(), build()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same seed diverged with RTS+ARF:\n%+v\n%+v", a, b)
	}
}

func TestTrafficGenValidation(t *testing.T) {
	cases := []struct {
		name string
		gen  TrafficGen
	}{
		{"cbr zero interval", CBR{PayloadBytes: 100, IntervalUs: 0}},
		{"cbr negative interval", CBR{PayloadBytes: 100, IntervalUs: -5}},
		{"cbr zero payload", CBR{PayloadBytes: 0, IntervalUs: 1000}},
		{"poisson zero rate", Poisson{PayloadBytes: 100, PktPerSec: 0}},
		{"poisson nan rate", Poisson{PayloadBytes: 100, PktPerSec: math.NaN()}},
		{"onoff zero spacing", &OnOff{PayloadBytes: 100, IntervalUs: 0, OnMeanUs: 1, OffMeanUs: 1}},
		{"saturated zero payload", Saturated{PayloadBytes: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := New(DefaultConfig(), 1)
			b := n.AddAP("AP", 0, 0, 1)
			st := n.AddStation(b, "sta", 10, 0)
			n.Add(FlowSpec{From: st, AC: AC_BE, Gen: tc.gen})
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Run did not panic", tc.name)
				}
			}()
			n.Run(1000)
		})
	}
}

// Regression for the CTS-side edge cases: an AP that both answers
// uplink RTSs and carries its own downlink traffic must neither stall
// a flow (a packet arriving while the CTS is on the air has to be
// contended for afterwards) nor corrupt its half-duplex state when its
// own frame and a CTS reply collide in the SIFS gap.
func TestApDownlinkInterleavesWithCtsReplies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RtsThresholdBytes = 1
	n := New(cfg, 17)
	b := n.AddAP("AP", 0, 0, 1)
	s1 := n.AddStation(b, "s1", -150, 0)
	s2 := n.AddStation(b, "s2", 150, 0)
	n.Add(FlowSpec{From: s1, AC: AC_BE, Gen: Saturated{PayloadBytes: 1200}})
	n.Add(FlowSpec{From: s2, AC: AC_BE, Gen: Saturated{PayloadBytes: 1200}})
	n.Add(FlowSpec{From: b.AP, To: s1, AC: AC_BE, Gen: Poisson{PayloadBytes: 600, PktPerSec: 400}})
	res := n.Run(1e6)
	for _, f := range res.Flows {
		if f.Delivered == 0 {
			t.Errorf("flow %s stalled: %+v", f.Label, f)
		}
	}
	if res.RtsAttempts == 0 {
		t.Fatal("no RTS exchanges ran")
	}
	// Conservation: every attempt is delivered, failed, or in flight.
	judged := res.Delivered + res.Collisions + res.NoiseLosses
	if judged > res.Attempts || res.Attempts-judged > 3 {
		t.Errorf("attempt accounting off: %+v", res)
	}
}

// The CTS responder must honor the reservation it grants: with the AP
// also carrying saturated downlink traffic, its own backoff may not
// fire into the data frame it just solicited (it cannot carrier-sense
// the hidden-range sender, so only its own CTS duration holds it off).
func TestRtsCtsRescuesBidirectionalHiddenTraffic(t *testing.T) {
	run := func(threshold int) Result {
		cfg := DefaultConfig()
		cfg.RtsThresholdBytes = threshold
		n := New(cfg, 9)
		b := n.AddAP("AP", 0, 0, 1)
		s1 := n.AddStation(b, "s1", 150, 0)
		s2 := n.AddStation(b, "s2", -150, 0)
		n.Add(FlowSpec{From: s1, AC: AC_BE, Gen: Saturated{PayloadBytes: 1500}})
		n.Add(FlowSpec{From: s2, AC: AC_BE, Gen: Saturated{PayloadBytes: 1500}})
		n.Add(FlowSpec{From: b.AP, To: s1, AC: AC_BE, Gen: Saturated{PayloadBytes: 1500}})
		return n.Run(1e6)
	}
	plain, rts := run(0), run(1)
	if rts.AggGoodputMbps < plain.AggGoodputMbps*1.5 {
		t.Errorf("bidirectional RTS/CTS goodput %.2f did not recover over plain %.2f",
			rts.AggGoodputMbps, plain.AggGoodputMbps)
	}
	// Residual collision losses should be dominated by cheap RTSs, not
	// data frames fired into solicited exchanges.
	if rts.Collisions-rts.RtsFailures > rts.Collisions/4 {
		t.Errorf("%d of %d collision losses were protected data frames",
			rts.Collisions-rts.RtsFailures, rts.Collisions)
	}
}
