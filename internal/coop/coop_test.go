package coop

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDirectOutageMatchesAnalytic(t *testing.T) {
	src := rng.New(1)
	c := Config{Scheme: Direct, RateBps: 1, MeanSNRsd: 10}
	sim := OutageProbability(c, 200000, src)
	want := DirectOutageAnalytic(1, 10)
	if math.Abs(sim-want) > 0.01 {
		t.Errorf("direct outage %v, analytic %v", sim, want)
	}
}

func TestRelayReducesOutage(t *testing.T) {
	// C11: cooperation improves effective link quality.
	src := rng.New(2)
	const snr = 20.0 // linear ~100
	lin := math.Pow(10, snr/10)
	direct := OutageProbability(Config{Scheme: Direct, RateBps: 2, MeanSNRsd: lin}, 100000, src.Split())
	df := OutageProbability(Config{
		Scheme: DecodeForward, RateBps: 2,
		MeanSNRsd: lin, MeanSNRsr: lin, MeanSNRrd: lin,
	}, 100000, src.Split())
	if df >= direct {
		t.Errorf("DF outage %v not below direct %v", df, direct)
	}
}

func TestSelectionBeatsSingleRelay(t *testing.T) {
	src := rng.New(3)
	lin := math.Pow(10, 1.5)
	base := Config{RateBps: 2, MeanSNRsd: lin, MeanSNRsr: lin, MeanSNRrd: lin}
	one := base
	one.Scheme = DecodeForward
	four := base
	four.Scheme = SelectionDF
	four.NumRelays = 4
	pOne := OutageProbability(one, 100000, src.Split())
	pFour := OutageProbability(four, 100000, src.Split())
	if pFour >= pOne {
		t.Errorf("4-relay selection outage %v not below single relay %v", pFour, pOne)
	}
}

func TestDiversityOrder(t *testing.T) {
	// Direct Rayleigh: diversity order ~1. DF relaying: order ~2.
	src := rng.New(4)
	dDirect := DiversityOrderEstimate(Config{Scheme: Direct, RateBps: 1}, 10, 20, 400000, src.Split())
	dDF := DiversityOrderEstimate(Config{Scheme: DecodeForward, RateBps: 1}, 10, 20, 400000, src.Split())
	if math.Abs(dDirect-1) > 0.3 {
		t.Errorf("direct diversity order %v, want ~1", dDirect)
	}
	if dDF < 1.5 {
		t.Errorf("DF diversity order %v, want ~2", dDF)
	}
}

func TestOutageMonotoneInSNR(t *testing.T) {
	src := rng.New(5)
	prev := 1.1
	for _, snrDB := range []float64{5, 10, 15, 20, 25} {
		lin := math.Pow(10, snrDB/10)
		p := OutageProbability(Config{
			Scheme: DecodeForward, RateBps: 1,
			MeanSNRsd: lin, MeanSNRsr: lin, MeanSNRrd: lin,
		}, 50000, src.Split())
		if p > prev {
			t.Fatalf("outage rose with SNR at %v dB: %v > %v", snrDB, p, prev)
		}
		prev = p
	}
}

func TestHalfDuplexCostAtLowSNR(t *testing.T) {
	// The known caveat of repetition-based relaying: at low SNR and high
	// target rate the half-duplex factor can make cooperation lose.
	src := rng.New(6)
	lin := math.Pow(10, 0.5) // ~3 dB
	direct := OutageProbability(Config{Scheme: Direct, RateBps: 4, MeanSNRsd: lin}, 50000, src.Split())
	df := OutageProbability(Config{
		Scheme: DecodeForward, RateBps: 4,
		MeanSNRsd: lin, MeanSNRsr: lin, MeanSNRrd: lin,
	}, 50000, src.Split())
	if direct < 0.9 && df < direct/2 {
		t.Errorf("at low SNR/high rate DF (%v) should not crush direct (%v)", df, direct)
	}
}

func TestEnergyShare(t *testing.T) {
	s, r := EnergyShare(Direct)
	if s != 1 || r != 0 {
		t.Errorf("direct share %v/%v", s, r)
	}
	s, r = EnergyShare(DecodeForward)
	if s != 0.5 || r != 0.5 {
		t.Errorf("DF share %v/%v", s, r)
	}
	if s+r != 1 {
		t.Error("shares must sum to 1")
	}
}

func TestBadRelayLinkDegradesToDirectDiversity(t *testing.T) {
	// A relay that can never decode leaves only the direct path (with the
	// half-duplex penalty on rate).
	src := rng.New(7)
	lin := math.Pow(10, 2.0)
	deaf := OutageProbability(Config{
		Scheme: DecodeForward, RateBps: 1,
		MeanSNRsd: lin, MeanSNRsr: 1e-9, MeanSNRrd: lin,
	}, 50000, src.Split())
	healthy := OutageProbability(Config{
		Scheme: DecodeForward, RateBps: 1,
		MeanSNRsd: lin, MeanSNRsr: lin, MeanSNRrd: lin,
	}, 50000, src.Split())
	if healthy >= deaf {
		t.Errorf("healthy relay outage %v not below deaf relay %v", healthy, deaf)
	}
}
