// Package mesh models 802.11s-style mesh networking: nodes placed on a
// plane, link rates derived from the analytic link model, shortest-path
// routing under hop-count or airtime metrics, end-to-end throughput of
// multi-hop paths on a shared channel, and coverage-area accounting.
//
// It reproduces the paper's two mesh claims: coverage grows dramatically
// with mesh relays (C9), and airtime-aware routing over several short
// high-rate hops beats one long low-rate hop (C10).
package mesh

import (
	"math"

	"repro/internal/linkmodel"
)

// Node is a mesh point at a planar position.
type Node struct {
	Name string
	X, Y float64
}

// Distance returns the Euclidean distance between nodes.
func (n Node) Distance(o Node) float64 {
	return math.Hypot(n.X-o.X, n.Y-o.Y)
}

// Network is a set of nodes sharing one link model.
type Network struct {
	Nodes []Node
	Link  linkmodel.Link
}

// New builds a network over the given nodes.
func New(nodes []Node, link linkmodel.Link) *Network {
	return &Network{Nodes: nodes, Link: link}
}

// RateBetween returns the best goodput between two nodes, 0 when the
// link cannot sustain any mode at the PER ceiling.
func (n *Network) RateBetween(i, j int) float64 {
	d := n.Nodes[i].Distance(n.Nodes[j])
	g := n.Link.GoodputAt(d)
	if g < 0.1 {
		return 0
	}
	return g
}

// Metric selects the routing link weight.
type Metric int

const (
	// HopCount gives every usable link weight 1: the naive shortest-path
	// routing the paper contrasts with intelligent metrics.
	HopCount Metric = iota
	// Airtime weighs links by transmission time per bit (the 802.11s
	// airtime link metric reduced to its essential 1/rate form plus a
	// per-hop channel-access overhead).
	Airtime
)

// airtimeOverheadUsPerFrame models per-hop access overhead of a 1500-byte
// frame (DIFS + backoff + PLCP + ACK).
const airtimeOverheadUs = 100.0

// linkWeight returns the routing cost of a usable link at rate r Mbps.
func linkWeight(metric Metric, rate float64) float64 {
	switch metric {
	case HopCount:
		return 1
	case Airtime:
		// microseconds to move a 1500-byte frame across the hop
		return airtimeOverheadUs + 8*1500/rate
	}
	panic("mesh: unknown metric")
}

// Route is a path with its routing cost and bottleneck statistics.
type Route struct {
	Path []int // node indices, source first
	Cost float64
	// ThroughputMbps is the end-to-end rate on a shared channel: hops
	// along the path time-share the medium, so the path rate is the
	// harmonic combination 1 / sum(1/r_i).
	ThroughputMbps float64
}

// ShortestPath runs Dijkstra from src to dst under the metric. The bool
// result reports whether any route exists.
func (n *Network) ShortestPath(src, dst int, metric Metric) (Route, bool) {
	const inf = math.MaxFloat64
	nN := len(n.Nodes)
	dist := make([]float64, nN)
	prev := make([]int, nN)
	done := make([]bool, nN)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, inf
		for i := 0; i < nN; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 || u == dst {
			break
		}
		done[u] = true
		for v := 0; v < nN; v++ {
			if v == u || done[v] {
				continue
			}
			rate := n.RateBetween(u, v)
			if rate <= 0 {
				continue
			}
			if w := dist[u] + linkWeight(metric, rate); w < dist[v] {
				dist[v] = w
				prev[v] = u
			}
		}
	}
	if dist[dst] == inf {
		return Route{}, false
	}
	// Reconstruct and compute the end-to-end throughput.
	var path []int
	for v := dst; v != -1; v = prev[v] {
		path = append([]int{v}, path...)
	}
	var invSum float64
	for k := 0; k+1 < len(path); k++ {
		invSum += 1 / n.RateBetween(path[k], path[k+1])
	}
	tp := 0.0
	if invSum > 0 {
		tp = 1 / invSum
	} else if src == dst {
		tp = math.Inf(1)
	}
	return Route{Path: path, Cost: dist[dst], ThroughputMbps: tp}, true
}

// Throughput returns the end-to-end rate between two nodes under the
// metric, 0 when unreachable.
func (n *Network) Throughput(src, dst int, metric Metric) float64 {
	r, ok := n.ShortestPath(src, dst, metric)
	if !ok {
		return 0
	}
	return r.ThroughputMbps
}

// CoverageResult summarizes the served fraction of an area.
type CoverageResult struct {
	ServedFraction float64 // fraction of probe points with service
	MeanRateMbps   float64 // average achievable rate over served points
}

// Coverage probes a grid of client positions over the square
// [0,areaSide]x[0,areaSide]: a point is served when some mesh node can
// deliver at least minRate to it AND that node routes to the gateway
// (node 0) at minRate or better. step sets the probe spacing.
func (n *Network) Coverage(areaSide, step, minRate float64, metric Metric) CoverageResult {
	if len(n.Nodes) == 0 {
		return CoverageResult{}
	}
	// Precompute gateway throughput for each mesh node.
	gwRate := make([]float64, len(n.Nodes))
	for i := range n.Nodes {
		if i == 0 {
			gwRate[i] = math.Inf(1)
			continue
		}
		gwRate[i] = n.Throughput(i, 0, metric)
	}
	var probes, served int
	var rateSum float64
	for x := step / 2; x < areaSide; x += step {
		for y := step / 2; y < areaSide; y += step {
			probes++
			client := Node{X: x, Y: y}
			best := 0.0
			for i, node := range n.Nodes {
				access := n.Link.GoodputAt(node.Distance(client))
				if access < minRate || gwRate[i] < minRate {
					continue
				}
				// End-to-end: access hop shares the medium with backhaul.
				e2e := access
				if !math.IsInf(gwRate[i], 1) {
					e2e = 1 / (1/access + 1/gwRate[i])
				}
				if e2e > best {
					best = e2e
				}
			}
			if best >= minRate {
				served++
				rateSum += best
			}
		}
	}
	res := CoverageResult{}
	if probes > 0 {
		res.ServedFraction = float64(served) / float64(probes)
	}
	if served > 0 {
		res.MeanRateMbps = rateSum / float64(served)
	}
	return res
}

// LinearTopology places n+1 nodes on a line with the given spacing,
// node 0 at the origin (the gateway).
func LinearTopology(nHops int, spacing float64) []Node {
	nodes := make([]Node, nHops+1)
	for i := range nodes {
		nodes[i] = Node{Name: nodeName(i), X: float64(i) * spacing}
	}
	return nodes
}

// GridTopology places nodes on a k x k grid with the given spacing.
func GridTopology(k int, spacing float64) []Node {
	nodes := make([]Node, 0, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			nodes = append(nodes, Node{Name: nodeName(i*k + j), X: float64(i) * spacing, Y: float64(j) * spacing})
		}
	}
	return nodes
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
}
