package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/netsim"
)

// The compact binary trace form: a pcap-like flat record stream for
// traces too large to keep as JSONL. Little-endian throughout.
//
//	header:  magic "NTRC" | version u8 | pad [3]u8 | count u32
//	record:  ts f64 | kind u8 | frame u8 | ac u8 | ok u8
//	         | node i32 | peer i32 | bytes i32 | mpdus i32
//	         | sinr f64 | value f64 | bitmap u64
//	         | modeLen u8 | mode [modeLen]u8
//
// Mode strings are short PHY-mode names, so a record is 53 bytes plus
// the name — about a third of its JSONL line.

var binMagic = [4]byte{'N', 'T', 'R', 'C'}

const binVersion = 1

// fixed-size record prefix before the mode string.
const recFixed = 8 + 4 + 4*4 + 8 + 8 + 8 + 1

// WriteBinary serializes events in the binary trace form.
func WriteBinary(w io.Writer, events []netsim.Event) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	copy(hdr[:4], binMagic[:])
	hdr[4] = binVersion
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, recFixed+16)
	for i := range events {
		buf = appendRecord(buf[:0], &events[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinary serializes the tracer's captured events, oldest first.
func (t *Tracer) WriteBinary(w io.Writer) error { return WriteBinary(w, t.Events()) }

func appendRecord(b []byte, ev *netsim.Event) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ev.TimeUs))
	ok := byte(0)
	if ev.Ok {
		ok = 1
	}
	b = append(b, byte(ev.Kind), byte(ev.Frame), byte(ev.AC), ok)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ev.Node)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ev.Peer)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ev.Bytes)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ev.Mpdus)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ev.SinrDB))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ev.Value))
	b = binary.LittleEndian.AppendUint64(b, ev.Bitmap)
	if len(ev.Mode) > 255 {
		ev.Mode = ev.Mode[:255]
	}
	b = append(b, byte(len(ev.Mode)))
	return append(b, ev.Mode...)
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]netsim.Event, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	count := binary.LittleEndian.Uint32(hdr[8:])
	events := make([]netsim.Event, 0, count)
	buf := make([]byte, recFixed)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ev := netsim.Event{
			TimeUs: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
			Kind:   netsim.EventKind(buf[8]),
			Frame:  netsim.FrameKind(buf[9]),
			AC:     netsim.AC(buf[10]),
			Ok:     buf[11] == 1,
			Node:   int(int32(binary.LittleEndian.Uint32(buf[12:]))),
			Peer:   int(int32(binary.LittleEndian.Uint32(buf[16:]))),
			Bytes:  int(int32(binary.LittleEndian.Uint32(buf[20:]))),
			Mpdus:  int(int32(binary.LittleEndian.Uint32(buf[24:]))),
			SinrDB: math.Float64frombits(binary.LittleEndian.Uint64(buf[28:])),
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(buf[36:])),
			Bitmap: binary.LittleEndian.Uint64(buf[44:]),
		}
		if n := int(buf[52]); n > 0 {
			mode := make([]byte, n)
			if _, err := io.ReadFull(br, mode); err != nil {
				return nil, fmt.Errorf("trace: record %d mode: %w", i, err)
			}
			ev.Mode = string(mode)
		}
		events = append(events, ev)
	}
	return events, nil
}
