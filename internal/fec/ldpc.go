package fec

import (
	"fmt"
	"math"
)

// LDPC implements an 802.11n-style quasi-cyclic low-density parity-check
// code: a 24-column base matrix of Z x Z circulants whose parity part has
// the dual-diagonal structure that permits linear-time encoding, and a
// normalized min-sum iterative decoder.
//
// The information part of the base matrix is generated deterministically
// (column weight 3, pseudo-random row placement and shifts) rather than
// copied from the standard's shift tables; see DESIGN.md. Performance is
// within a fraction of a dB of the published matrices, which is all the
// reproduced experiments rely on.
type LDPC struct {
	Z        int      // circulant size (802.11n uses 27, 54, 81)
	nb       int      // base columns (24)
	mb       int      // base rows
	rate     CodeRate // nominal rate
	entries  []qcEntry
	checkAdj [][]int // expanded graph: variable indices per check node
}

type qcEntry struct {
	row, col, shift int
}

const ldpcBaseColumns = 24

// NewLDPC constructs a code of the given rate and circulant size. Z must
// be positive; the 802.11n values are 27, 54 and 81.
func NewLDPC(rate CodeRate, z int) *LDPC {
	if z <= 0 {
		panic("fec: LDPC circulant size must be positive")
	}
	var mb int
	switch rate {
	case Rate1_2:
		mb = 12
	case Rate2_3:
		mb = 8
	case Rate3_4:
		mb = 6
	case Rate5_6:
		mb = 4
	default:
		panic("fec: unsupported LDPC rate")
	}
	l := &LDPC{Z: z, nb: ldpcBaseColumns, mb: mb, rate: rate}
	l.buildBase()
	l.expandGraph()
	return l
}

// K returns the number of information bits per codeword.
func (l *LDPC) K() int { return (l.nb - l.mb) * l.Z }

// N returns the codeword length in bits.
func (l *LDPC) N() int { return l.nb * l.Z }

// Rate returns the nominal code rate.
func (l *LDPC) Rate() CodeRate { return l.rate }

// buildBase lays out the base matrix: the dual-diagonal parity structure
// plus pseudo-random weight-3 information columns chosen to avoid
// length-4 cycles in the lifted Tanner graph (two columns sharing two
// rows form a 4-cycle when their shift differences coincide mod Z), the
// main impairment of naive random QC constructions.
func (l *LDPC) buildBase() {
	kb := l.nb - l.mb
	// Small deterministic LCG so codes are identical across runs.
	state := uint64(0x9E3779B97F4A7C15) ^ uint64(l.mb)<<32 ^ uint64(l.Z)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}

	// Parity column 0: rows 0 and mb-1 carry shift 1, the middle row shift
	// 0, so that summing all block-rows isolates p0.
	mid := l.mb / 2
	l.entries = append(l.entries,
		qcEntry{row: 0, col: kb, shift: 1 % l.Z},
		qcEntry{row: mid, col: kb, shift: 0},
		qcEntry{row: l.mb - 1, col: kb, shift: 1 % l.Z},
	)
	// Remaining parity columns: identity circulants on the dual diagonal.
	for j := 1; j < l.mb; j++ {
		l.entries = append(l.entries,
			qcEntry{row: j - 1, col: kb + j, shift: 0},
			qcEntry{row: j, col: kb + j, shift: 0},
		)
	}

	// byRow[r] collects placed (col, shift) pairs for the cycle check.
	type placed struct{ col, shift int }
	byRow := make([][]placed, l.mb)
	for _, e := range l.entries {
		byRow[e.row] = append(byRow[e.row], placed{e.col, e.shift})
	}
	// makesCycle reports whether a candidate column with entries
	// (rowA, sA) and (rowB, sB) closes a 4-cycle with any placed column.
	makesCycle := func(rowA, sA, rowB, sB int) bool {
		for _, a := range byRow[rowA] {
			for _, b := range byRow[rowB] {
				if a.col != b.col {
					continue
				}
				if ((sA-sB-a.shift+b.shift)%l.Z+l.Z)%l.Z == 0 {
					return true
				}
			}
		}
		return false
	}

	for j := 0; j < kb; j++ {
		var rows [3]int
		var shifts [3]int
		ok := false
		for attempt := 0; attempt < 300 && !ok; attempt++ {
			seen := map[int]bool{}
			for len(seen) < 3 {
				seen[next(l.mb)] = true
			}
			i := 0
			for r := range seen {
				rows[i] = r
				shifts[i] = next(l.Z)
				i++
			}
			ok = !makesCycle(rows[0], shifts[0], rows[1], shifts[1]) &&
				!makesCycle(rows[0], shifts[0], rows[2], shifts[2]) &&
				!makesCycle(rows[1], shifts[1], rows[2], shifts[2])
		}
		// Accept the final draw even if the search failed (dense bases at
		// high rate cannot always be 4-cycle free).
		for i := 0; i < 3; i++ {
			l.entries = append(l.entries, qcEntry{row: rows[i], col: j, shift: shifts[i]})
			byRow[rows[i]] = append(byRow[rows[i]], placed{j, shifts[i]})
		}
	}
}

// expandGraph lifts the base matrix into the full Tanner graph adjacency.
func (l *LDPC) expandGraph() {
	l.checkAdj = make([][]int, l.mb*l.Z)
	for _, e := range l.entries {
		for r := 0; r < l.Z; r++ {
			check := e.row*l.Z + r
			variable := e.col*l.Z + (r+e.shift)%l.Z
			l.checkAdj[check] = append(l.checkAdj[check], variable)
		}
	}
}

// shiftBlock returns x cyclically shifted left by s: out[i] = x[(i+s)%Z].
func shiftBlock(x []byte, s, z int) []byte {
	out := make([]byte, z)
	for i := 0; i < z; i++ {
		out[i] = x[(i+s)%z]
	}
	return out
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Encode produces the systematic codeword [info | parity] for exactly K()
// information bits using the dual-diagonal back-substitution.
func (l *LDPC) Encode(info []byte) []byte {
	if len(info) != l.K() {
		panic(fmt.Sprintf("fec: LDPC encode wants %d info bits, got %d", l.K(), len(info)))
	}
	z := l.Z
	kb := l.nb - l.mb
	mid := l.mb / 2

	// lambda[i] = sum over info columns of P^shift * c_j for block-row i.
	lambda := make([][]byte, l.mb)
	for i := range lambda {
		lambda[i] = make([]byte, z)
	}
	for _, e := range l.entries {
		if e.col >= kb {
			continue
		}
		block := info[e.col*z : (e.col+1)*z]
		xorInto(lambda[e.row], shiftBlock(block, e.shift, z))
	}

	parity := make([][]byte, l.mb)
	// p0 = sum of all lambda (the two shift-1 circulants cancel).
	p0 := make([]byte, z)
	for _, lam := range lambda {
		xorInto(p0, lam)
	}
	parity[0] = p0
	// Row 0: lambda0 + P^1 p0 + p1 = 0.
	p1 := append([]byte(nil), lambda[0]...)
	xorInto(p1, shiftBlock(p0, 1%z, z))
	if l.mb > 1 {
		parity[1] = p1
	}
	// Rows 1..mb-2: each yields the next parity block.
	for i := 1; i < l.mb-1; i++ {
		p := append([]byte(nil), lambda[i]...)
		xorInto(p, parity[i])
		if i == mid {
			xorInto(p, p0) // column 0 has a shift-0 circulant at the middle row
		}
		parity[i+1] = p
	}

	out := make([]byte, 0, l.N())
	out = append(out, info...)
	for _, p := range parity {
		out = append(out, p...)
	}
	return out
}

// CheckParity reports whether H * c == 0 for a hard codeword.
func (l *LDPC) CheckParity(codeword []byte) bool {
	if len(codeword) != l.N() {
		return false
	}
	for _, vars := range l.checkAdj {
		sum := byte(0)
		for _, v := range vars {
			sum ^= codeword[v] & 1
		}
		if sum != 0 {
			return false
		}
	}
	return true
}

// Decode runs normalized min-sum belief propagation (factor 0.8) for at
// most maxIter iterations on channel LLRs (positive favours 0). It
// returns the decoded information bits and whether all parity checks were
// satisfied.
func (l *LDPC) Decode(llrs []float64, maxIter int) ([]byte, bool) {
	if len(llrs) != l.N() {
		panic(fmt.Sprintf("fec: LDPC decode wants %d LLRs, got %d", l.N(), len(llrs)))
	}
	const alpha = 0.8
	nChecks := len(l.checkAdj)

	// Edge storage: messages per (check, position-in-check).
	c2v := make([][]float64, nChecks)
	for m := range c2v {
		c2v[m] = make([]float64, len(l.checkAdj[m]))
	}

	posterior := make([]float64, l.N())
	hard := make([]byte, l.N())

	decide := func() bool {
		ok := true
		for i, p := range posterior {
			if p < 0 {
				hard[i] = 1
			} else {
				hard[i] = 0
			}
		}
		for _, vars := range l.checkAdj {
			sum := byte(0)
			for _, v := range vars {
				sum ^= hard[v]
			}
			if sum != 0 {
				ok = false
				break
			}
		}
		return ok
	}

	copy(posterior, llrs)
	if decide() {
		return append([]byte(nil), hard[:l.K()]...), true
	}

	for iter := 0; iter < maxIter; iter++ {
		// Check-node update using v->c = posterior - c2v (flooding).
		for m, vars := range l.checkAdj {
			// First pass: find min1, min2 of |v2c| and product of signs.
			sign := 1.0
			min1, min2 := math.Inf(1), math.Inf(1)
			min1Pos := -1
			for pos, v := range vars {
				v2c := posterior[v] - c2v[m][pos]
				mag := math.Abs(v2c)
				if v2c < 0 {
					sign = -sign
				}
				if mag < min1 {
					min2 = min1
					min1 = mag
					min1Pos = pos
				} else if mag < min2 {
					min2 = mag
				}
			}
			// Second pass: emit messages and fold them into posteriors.
			for pos, v := range vars {
				v2c := posterior[v] - c2v[m][pos]
				mag := min1
				if pos == min1Pos {
					mag = min2
				}
				s := sign
				if v2c < 0 {
					s = -s
				}
				newMsg := alpha * s * mag
				posterior[v] += newMsg - c2v[m][pos]
				c2v[m][pos] = newMsg
			}
		}
		if decide() {
			return append([]byte(nil), hard[:l.K()]...), true
		}
	}
	return append([]byte(nil), hard[:l.K()]...), false
}
