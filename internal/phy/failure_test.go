package phy

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// Failure-injection tests: a production receiver must reject garbage
// gracefully — no panics, no false accepts — under truncation, wrong
// noise estimates, empty payloads and adversarial corruption.

func allSisoPhys(t *testing.T) []LinkPHY {
	t.Helper()
	d, _ := NewDsss(2)
	f, _ := NewFhss(1)
	c, _ := NewCck(11)
	o, _ := NewOfdm(24)
	return []LinkPHY{d, f, c, o}
}

func TestEmptyPayloadRoundTrip(t *testing.T) {
	for _, p := range allSisoPhys(t) {
		tx := p.TxFrame(nil)
		got, ok := p.RxFrame(tx, 1e-9)
		if !ok {
			t.Errorf("%s: empty payload rejected", p.Name())
		}
		if len(got) != 0 {
			t.Errorf("%s: empty payload decoded as %d bytes", p.Name(), len(got))
		}
	}
}

func TestTruncatedSamplesRejected(t *testing.T) {
	src := rng.New(1)
	for _, p := range allSisoPhys(t) {
		tx := p.TxFrame(src.Bytes(100))
		for _, frac := range []float64{0, 0.1, 0.5, 0.9} {
			cut := tx[:int(float64(len(tx))*frac)]
			if _, ok := p.RxFrame(cut, 0.01); ok {
				t.Errorf("%s: accepted %.0f%% of a frame", p.Name(), frac*100)
			}
		}
	}
}

func TestGarbageSamplesRejected(t *testing.T) {
	src := rng.New(2)
	for _, p := range allSisoPhys(t) {
		noise := src.ComplexGaussianVec(4096, 1)
		if _, ok := p.RxFrame(noise, 1); ok {
			t.Errorf("%s: decoded a frame from pure noise", p.Name())
		}
	}
}

func TestWrongNoiseEstimateStillDecodes(t *testing.T) {
	// The OFDM receiver uses noiseVar only for LLR scaling; a 10x
	// misestimate must not break error-free conditions.
	src := rng.New(3)
	p, _ := NewOfdm(24)
	payload := src.Bytes(200)
	noiseVar := 0.001
	rx := channel.AWGN(p.TxFrame(payload), noiseVar, src)
	for _, est := range []float64{noiseVar / 10, noiseVar * 10} {
		if _, ok := p.RxFrame(rx, est); !ok {
			t.Errorf("noise estimate %v broke decoding", est)
		}
	}
}

func TestHtTruncatedAndGarbage(t *testing.T) {
	src := rng.New(4)
	p, err := NewHt(HtConfig{MCS: 8, NRx: 2})
	if err != nil {
		t.Fatal(err)
	}
	tx := p.TxFrame(src.Bytes(100))
	short := [][]complex128{tx[0][:50], tx[1][:50]}
	if _, ok := p.RxFrame(short, 0.01); ok {
		t.Error("HT accepted a truncated frame")
	}
	noise := [][]complex128{src.ComplexGaussianVec(3000, 1), src.ComplexGaussianVec(3000, 1)}
	if _, ok := p.RxFrame(noise, 1); ok {
		t.Error("HT decoded pure noise")
	}
	if _, ok := p.RxFrame([][]complex128{tx[0]}, 0.01); ok {
		t.Error("HT accepted wrong antenna count")
	}
}

func TestMaxPayload(t *testing.T) {
	src := rng.New(5)
	p, _ := NewOfdm(54)
	payload := src.Bytes(2304) // 802.11 MSDU maximum
	rx := channel.AWGN(p.TxFrame(payload), 1e-4, src)
	got, ok := p.RxFrame(rx, 1e-4)
	if !ok || len(got) != len(payload) {
		t.Fatal("maximum-size frame failed")
	}
}

func TestOversizePayloadPanics(t *testing.T) {
	p, _ := NewOfdm(6)
	defer func() {
		if recover() == nil {
			t.Error("payload beyond the 16-bit length field should panic")
		}
	}()
	p.TxFrame(make([]byte, 70000))
}

func TestAdversarialBitFlips(t *testing.T) {
	// Flip random samples hard enough to corrupt the frame: the FCS must
	// catch every case (no silent wrong-payload accepts).
	src := rng.New(6)
	p, _ := NewCck(11)
	payload := src.Bytes(200)
	falseAccepts := 0
	for trial := 0; trial < 100; trial++ {
		tx := p.TxFrame(payload)
		// Invert a contiguous burst of chips.
		start := src.Intn(len(tx) - 64)
		for i := start; i < start+64; i++ {
			tx[i] = -tx[i]
		}
		got, ok := p.RxFrame(tx, 0.01)
		if ok && !byteSlicesEqual(got, payload) {
			falseAccepts++
		}
	}
	if falseAccepts > 0 {
		t.Errorf("%d silent corruptions passed the FCS", falseAccepts)
	}
}
