package fec

import (
	"testing"

	"repro/internal/rng"
)

// Ablation: what the interleaver buys. A frequency-selective channel can
// erase a run of adjacent subcarriers; without interleaving those
// erasures hit consecutive coded bits and overwhelm the Viterbi
// decoder's constraint length, while interleaving scatters them into
// isolated, correctable losses. This is the design reason 802.11a
// interleaves, demonstrated end to end on the coding chain.

func notchedDecode(t *testing.T, interleave bool, src *rng.Source) int {
	t.Helper()
	const (
		ncbps = 96 // QPSK on 48 carriers
		nbpsc = 2
		nSym  = 10
	)
	info := src.Bits(ncbps*nSym/2 - 6) // rate 1/2 with tail fills nSym symbols
	coded := ConvEncode(info, Rate1_2)
	if len(coded) != ncbps*nSym {
		t.Fatalf("coded length %d, want %d", len(coded), ncbps*nSym)
	}
	// Carrier k carries bits [2k, 2k+1] of each (possibly interleaved)
	// symbol. Erase carriers 10..17 — a deep notch.
	llrs := make([]float64, 0, len(coded))
	for s := 0; s < nSym; s++ {
		symbol := coded[s*ncbps : (s+1)*ncbps]
		if interleave {
			symbol = Interleave(symbol, ncbps, nbpsc)
		}
		symLLR := make([]float64, ncbps)
		for k := 0; k < ncbps/nbpsc; k++ {
			erased := k >= 10 && k <= 17
			for b := 0; b < nbpsc; b++ {
				bit := symbol[k*nbpsc+b]
				switch {
				case erased:
					symLLR[k*nbpsc+b] = 0
				case bit == 0:
					symLLR[k*nbpsc+b] = 4
				default:
					symLLR[k*nbpsc+b] = -4
				}
			}
		}
		if interleave {
			symLLR = DeinterleaveLLRs(symLLR, ncbps, nbpsc)
		}
		llrs = append(llrs, symLLR...)
	}
	got := ViterbiDecode(llrs, Rate1_2, len(info))
	errs := 0
	for i := range info {
		if got[i] != info[i] {
			errs++
		}
	}
	return errs
}

func TestInterleaverDefeatsCarrierNotch(t *testing.T) {
	src := rng.New(77)
	withoutErrs := notchedDecode(t, false, src.Split())
	withErrs := notchedDecode(t, true, src.Split())
	if withErrs != 0 {
		t.Errorf("interleaved chain had %d bit errors under the notch", withErrs)
	}
	if withoutErrs == 0 {
		t.Error("non-interleaved chain survived the notch; ablation shows nothing")
	}
}
