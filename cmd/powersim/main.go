// Command powersim prints device power budgets across antenna
// configurations and power-management policies.
//
// Usage:
//
//	powersim
//	powersim -duty 0.01 -output 0.05
package main

import (
	"flag"
	"fmt"

	"repro/internal/power"
)

func main() {
	duty := flag.Float64("duty", 0.01, "receive traffic duty cycle for the policy comparison")
	output := flag.Float64("output", 0.05, "average radiated power in watts")
	papr := flag.Float64("papr", 10, "waveform PAPR in dB")
	flag.Parse()

	d := power.DefaultDevice()
	fmt.Printf("device power by configuration (radiated %.0f mW, PAPR %.0f dB)\n", *output*1000, *papr)
	fmt.Println("config   TX W    RX W    listen W")
	for _, n := range []int{1, 2, 3, 4} {
		c := power.RadioConfig{TxChains: n, RxChains: n, Streams: n, OutputW: *output, PaprDB: *papr}
		fmt.Printf("%dx%d      %-7.3f %-7.3f %.3f\n", n, n, d.TxPowerW(c), d.RxPowerW(c), d.ListenPowerW(n))
	}

	fmt.Printf("\nrx-chain policy over 10 s at %.1f%% duty (4x4):\n", *duty*100)
	c4 := power.RadioConfig{TxChains: 4, RxChains: 4, Streams: 4, OutputW: *output, PaprDB: *papr}
	tr := power.TrafficPattern{DurationS: 10, RxBusyS: 10 * *duty, RxEventsN: int(10 * *duty / 0.002)}
	on := d.RxEnergyJ(c4, tr, power.AlwaysOn)
	sniff := d.RxEnergyJ(c4, tr, power.SniffThenWake)
	fmt.Printf("always-on:       %.3f J\n", on)
	fmt.Printf("sniff-then-wake: %.3f J  (%.1fx saving)\n", sniff, on/sniff)

	fmt.Println("\nPA efficiency vs waveform PAPR:")
	pa := power.DefaultPA()
	for _, p := range []float64{0, 3, 6, 10, 12} {
		b := power.RequiredBackoffDB(p)
		fmt.Printf("PAPR %4.0f dB -> backoff %4.0f dB -> efficiency %4.1f%%\n", p, b, 100*pa.EfficiencyAt(b))
	}
}
