package sim

import (
	"testing"
)

func TestEventsFireInOrder(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !ev.Scheduled() {
		t.Error("fresh event not Scheduled")
	}
	ev.Cancel()
	if ev.Scheduled() {
		t.Error("cancelled event still Scheduled")
	}
	e.Run(5)
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(10, tick)
		}
	}
	e.Schedule(10, tick)
	e.Run(100)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	if e.Now() != 100 {
		t.Errorf("now = %v", e.Now())
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(50, func() { fired = true })
	e.Run(10)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 10 {
		t.Errorf("now = %v, want 10", e.Now())
	}
	e.Run(100)
	if !fired {
		t.Error("event did not fire after extending horizon")
	}
}

func TestStepEmptyQueue(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("At in the past should panic")
		}
	}()
	e.At(3, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestRunBoundaryInclusive(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(10, func() { fired = true })
	e.Run(10)
	if !fired {
		t.Error("event scheduled exactly at until did not fire")
	}
}

func TestCancelAfterFireIsHarmless(t *testing.T) {
	var e Engine
	count := 0
	ev := e.Schedule(1, func() { count++ })
	e.Run(5)
	ev.Cancel() // already popped and fired; must be a no-op
	e.Run(10)
	if count != 1 {
		t.Errorf("event fired %d times", count)
	}
}

func TestCancelSameTimestampFromEarlierEvent(t *testing.T) {
	var e Engine
	fired := false
	var victim EventRef
	e.Schedule(5, func() { victim.Cancel() })
	victim = e.Schedule(5, func() { fired = true })
	e.Run(10)
	if fired {
		t.Error("event cancelled by a same-timestamp predecessor still fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestCancelRemovesEagerly(t *testing.T) {
	// Cancel must take the event out of the heap immediately, not leave
	// a dead entry to be skipped later: Pending reflects the drop at
	// once, and double-Cancel stays a no-op.
	var e Engine
	evs := make([]EventRef, 100)
	for i := range evs {
		evs[i] = e.Schedule(float64(i+1), func() {})
	}
	for i := 0; i < 50; i++ {
		evs[2*i].Cancel()
		evs[2*i].Cancel() // idempotent
	}
	if e.Pending() != 50 {
		t.Errorf("pending = %d after cancelling half, want 50", e.Pending())
	}
	fired := 0
	for e.Step() {
		fired++
	}
	_ = fired
	if e.Pending() != 0 {
		t.Errorf("pending = %d after drain", e.Pending())
	}
}

func TestCancelInterleavedWithReschedule(t *testing.T) {
	// The netsim carrier-sense pattern: schedule, cancel, reschedule in
	// a tight loop. The queue must not accumulate dead events.
	var e Engine
	var ev EventRef
	for i := 0; i < 1000; i++ {
		ev.Cancel()
		ev = e.Schedule(1, func() {})
		if e.Pending() != 1 {
			t.Fatalf("pending = %d at iteration %d, want 1", e.Pending(), i)
		}
	}
}

func TestCancelBeforeAnyPop(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(3, func() { fired = true })
	keep := 0
	e.Schedule(1, func() { keep++ })
	ev.Cancel()
	e.Run(10)
	if fired || keep != 1 {
		t.Errorf("fired=%v keep=%d after pre-pop cancel", fired, keep)
	}
}

func TestStaleCancelAfterPopSparesReusedRecord(t *testing.T) {
	// Generation-counter semantics: a ref held past its event's firing
	// must not cancel the pooled record's next occupant. With one
	// record in play, B is guaranteed to reuse A's slot.
	var e Engine
	stale := e.Schedule(1, func() {})
	e.Run(2) // A fires; its record returns to the free list
	bFired := false
	b := e.Schedule(1, func() { bFired = true })
	if !b.Scheduled() {
		t.Fatal("B not scheduled")
	}
	stale.Cancel() // refers to A's generation; must be a no-op
	if !b.Scheduled() {
		t.Error("stale Cancel of a fired event killed the record's new occupant")
	}
	e.Run(10)
	if !bFired {
		t.Error("reused event did not fire")
	}
}

func TestStaleCancelAfterRescheduleReuse(t *testing.T) {
	// Cancel, then reschedule (reusing the record): the ref from before
	// the cancel must stay inert through the record's next life.
	var e Engine
	stale := e.Schedule(5, func() {})
	stale.Cancel()
	fired := 0
	fresh := e.Schedule(1, func() { fired++ })
	stale.Cancel() // second stale cancel, now aimed at fresh's record
	if !fresh.Scheduled() {
		t.Fatal("stale Cancel reached the rescheduled event")
	}
	e.Run(10)
	if fired != 1 {
		t.Errorf("rescheduled event fired %d times, want 1", fired)
	}
	if stale.Scheduled() {
		t.Error("stale ref reports Scheduled")
	}
}

func TestPoolReusesRecords(t *testing.T) {
	// Steady-state schedule/fire churn must run entirely off the free
	// list: after warmup, no allocations per op.
	var e Engine
	fn := func() {}
	e.Schedule(1, fn)
	e.Run(2) // warm the pool and the heap's backing array
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule/fire churn allocates %v per op, want 0", allocs)
	}
}

func TestStaleTimeIsZero(t *testing.T) {
	var e Engine
	ev := e.Schedule(7, func() {})
	if ev.Time() != e.Now()+7 {
		t.Errorf("Time = %v, want 7", ev.Time())
	}
	ev.Cancel()
	if ev.Time() != 0 {
		t.Errorf("stale Time = %v, want 0", ev.Time())
	}
}

// BenchmarkCancelChurn models netsim's backoff freeze/resume: every
// iteration cancels a live event and schedules a replacement. With lazy
// cancellation the heap would grow with dead entries; eager removal
// keeps it flat.
func BenchmarkCancelChurn(b *testing.B) {
	var e Engine
	const live = 64 // concurrently armed backoff events
	evs := make([]EventRef, live)
	for i := range evs {
		evs[i] = e.Schedule(float64(i+1), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % live
		evs[slot].Cancel()
		evs[slot] = e.Schedule(float64(live), func() {})
	}
	if e.Pending() > live {
		b.Fatalf("heap grew to %d entries despite cancels", e.Pending())
	}
}

// BenchmarkScheduleChurn is the pooled-allocation contract: the
// schedule→fire cycle that dominates netsim's event loop must not
// allocate once the free list is warm (~0 allocs/op under
// ReportAllocs).
func BenchmarkScheduleChurn(b *testing.B) {
	var e Engine
	fn := func() {}
	e.Schedule(1, fn)
	e.Run(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Step()
	}
}
