// Command benchjson converts `go test -bench` text output into a JSON
// artifact so CI can accumulate a per-PR performance trajectory.
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | tee bench.txt
//	benchjson -in bench.txt -out BENCH_netsim.json
//
// The output is a single JSON object with the parse timestamp left to
// the consumer (CI records it) and one entry per benchmark:
//
//	{"benchmarks": [{"name": "BenchmarkE22NetSim-8", "iterations": 1,
//	  "ns_per_op": 123456, "bytes_per_op": 789, "allocs_per_op": 12}, ...]}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Artifact is the JSON document benchjson emits.
type Artifact struct {
	Commit     string  `json:"commit,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// parseLine decodes one `BenchmarkName-N  iters  123 ns/op [456 B/op 7 allocs/op]`
// line, reporting ok=false for non-benchmark lines (headers, PASS/ok).
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp == 0 {
		return Bench{}, false
	}
	return b, true
}

func main() {
	in := flag.String("in", "-", "benchmark text output to parse (- for stdin)")
	out := flag.String("out", "-", "JSON artifact path (- for stdout)")
	commit := flag.String("commit", os.Getenv("GITHUB_SHA"), "commit hash to stamp into the artifact")
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	art := Artifact{Commit: *commit}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(art.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
